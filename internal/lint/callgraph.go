package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file builds the module-wide static call graph the interprocedural
// analyzers (entropyflow, snapcover, homeshard) run on. It is deliberately
// conservative and purely syntactic over go/types facts — no SSA, no
// x/tools — matching the zero-dependency loader:
//
//   - Direct calls to declared functions and methods resolve exactly.
//   - Calls through a module-defined interface resolve to every module
//     type implementing the interface (candidate edges, marked Iface).
//     Interfaces defined outside the module are not expanded.
//   - A function literal gets its own node. It is classified at its
//     creation site: immediately invoked, or assigned to a local variable
//     whose every use is a direct call, it counts as part of its creator
//     (a Calls edge from the enclosing function). Passed as a direct call
//     argument it records the receiving callee (PassedTo). Anything else
//     — returned, stored in a field/slice/global, captured by another
//     escape — marks it Escapes: it can run in an unknown context.
//   - Referencing a function or method as a *value* (method value, method
//     expression, bare function name outside call position) records a
//     Refs edge: the target may be invoked anywhere, so analyses treat
//     such references as potential calls.
//   - Calls through plain function-typed variables and parameters do not
//     resolve; the Refs edge at the point the value was created is the
//     conservative stand-in.
type CallGraph struct {
	// Nodes lists every declared function/method and every function
	// literal of the loaded packages, in deterministic (package, file,
	// position) order.
	Nodes []*Node
	// ByFn maps a declared function object to its node.
	ByFn map[*types.Func]*Node

	fset *token.FileSet

	// entropyOnce/taint cache the entropyflow fixpoint (see entropyflow.go).
	entropyOnce sync.Once
	taint       map[*Node]*taintStep
	// snapOnce/snapDiags cache the snapcover result (see snapcover.go).
	snapOnce  sync.Once
	snapDiags []pkgDiag
	// homeOnce/homeDiags cache the homeshard reachability result.
	homeOnce  sync.Once
	homeDiags []pkgDiag
}

// pkgDiag is a precomputed finding from a module-global analysis, emitted
// by the package that owns it so per-package runs stay deterministic.
type pkgDiag struct {
	pkg  string
	pos  token.Pos
	rule string
	msg  string
}

// Node is one function in the call graph: a declared function or method
// (Fn != nil) or a function literal (Lit != nil).
type Node struct {
	Fn   *types.Func  // declared function/method object; nil for literals
	Lit  *ast.FuncLit // the literal; nil for declared functions
	Encl *Node        // lexically enclosing function, literals only
	Pkg  *Package     // package the body lives in
	Body *ast.BlockStmt
	Sig  *types.Signature

	// Calls are statically resolved invocations made by this body
	// (excluding nested literals, which have their own nodes). A
	// non-escaping literal appears as a Calls edge from its creator.
	Calls []Edge
	// Refs are function values referenced without being called.
	Refs []Edge

	// PassedTo is the resolved callee this literal is a direct argument
	// of, if any (closures handed to Kernel.Defer / Runtime.runAt).
	PassedTo *types.Func
	// Escapes marks a literal whose invocation context is unknown.
	Escapes bool
}

// Pos returns the declaration position of the node.
func (n *Node) Pos() token.Pos {
	if n.Fn != nil {
		return n.Fn.Pos()
	}
	return n.Lit.Pos()
}

// Edge is one outgoing call or reference.
type Edge struct {
	// Callee is the target object; nil for edges to function literals.
	Callee *types.Func
	// To is the module node for Callee (or the literal), nil when the
	// target is outside the loaded packages (standard library).
	To *Node
	// Pos is the call or reference site.
	Pos token.Pos
	// Iface marks a conservative interface-dispatch candidate.
	Iface bool
}

// CallGraph lazily builds (once) and returns the module call graph.
func (prog *Program) CallGraph() *CallGraph {
	prog.cgOnce.Do(func() { prog.cg = buildCallGraph(prog) })
	return prog.cg
}

type cgBuilder struct {
	prog *Program
	g    *CallGraph
	// declNode/litNode locate the node a body position belongs to.
	declNode map[*ast.FuncDecl]*Node
	litNode  map[*ast.FuncLit]*Node
	// moduleTypes are all named types declared in loaded packages, in
	// deterministic order, for interface-candidate expansion.
	moduleTypes []*types.TypeName
	ifaceCand   map[*types.Func][]*types.Func
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &cgBuilder{
		prog:      prog,
		g:         &CallGraph{ByFn: make(map[*types.Func]*Node), fset: prog.Fset},
		declNode:  make(map[*ast.FuncDecl]*Node),
		litNode:   make(map[*ast.FuncLit]*Node),
		ifaceCand: make(map[*types.Func][]*types.Func),
	}
	for _, p := range prog.Pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				b.moduleTypes = append(b.moduleTypes, tn)
			}
		}
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			b.walkFile(p, f)
		}
	}
	// Resolve edge targets now that every node exists.
	for _, n := range b.g.Nodes {
		for i := range n.Calls {
			if e := &n.Calls[i]; e.To == nil && e.Callee != nil {
				e.To = b.g.ByFn[e.Callee]
			}
		}
		for i := range n.Refs {
			if e := &n.Refs[i]; e.To == nil && e.Callee != nil {
				e.To = b.g.ByFn[e.Callee]
			}
		}
	}
	return b.g
}

func (b *cgBuilder) walkFile(p *Package, f *ast.File) {
	inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			fn, _ := p.Info.Defs[n.Name].(*types.Func)
			if fn == nil {
				return true
			}
			node := &Node{Fn: fn, Pkg: p, Body: n.Body,
				Sig: fn.Type().(*types.Signature)}
			b.declNode[n] = node
			b.g.ByFn[fn] = node
			b.g.Nodes = append(b.g.Nodes, node)
		case *ast.FuncLit:
			b.addLit(p, n, stack)
		case *ast.CallExpr:
			b.addCall(p, n, stack)
		case *ast.Ident:
			// A bare function name outside call position is a value
			// reference. Selector targets are handled at the selector.
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			if fn, ok := p.Info.Uses[n].(*types.Func); ok && !inCallPosition(stack, n) {
				b.addRef(p, stack, fn, n.Pos())
			}
		case *ast.SelectorExpr:
			if fn, ok := p.Info.Uses[n.Sel].(*types.Func); ok && !inCallPosition(stack, n) {
				b.addRef(p, stack, fn, n.Pos())
			}
		}
		return true
	})
}

// enclosingNode finds the node of the innermost function enclosing the
// element at the top of stack (excluding that element itself).
func (b *cgBuilder) enclosingNode(stack []ast.Node) *Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch e := stack[i].(type) {
		case *ast.FuncDecl:
			return b.declNode[e]
		case *ast.FuncLit:
			return b.litNode[e]
		}
	}
	return nil
}

// inCallPosition reports whether expr is the function operand of its
// enclosing call expression.
func inCallPosition(stack []ast.Node, expr ast.Expr) bool {
	self := ast.Expr(expr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch e := stack[i].(type) {
		case *ast.ParenExpr:
			self = e
			continue
		case *ast.CallExpr:
			return ast.Unparen(e.Fun) == ast.Unparen(self)
		}
		return false
	}
	return false
}

func (b *cgBuilder) addCall(p *Package, call *ast.CallExpr, stack []ast.Node) {
	encl := b.enclosingNode(stack)
	if encl == nil {
		return // package-level initializer expression
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return // builtin, conversion, or call through a function value
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// Interface dispatch: expand to module implementations when the
		// interface itself is module-defined.
		for _, cand := range b.ifaceCandidates(fn) {
			encl.Calls = append(encl.Calls, Edge{Callee: cand, Pos: call.Pos(), Iface: true})
		}
		return
	}
	encl.Calls = append(encl.Calls, Edge{Callee: fn, Pos: call.Pos()})
}

func (b *cgBuilder) addRef(p *Package, stack []ast.Node, fn *types.Func, pos token.Pos) {
	encl := b.enclosingNode(stack)
	if encl == nil {
		return
	}
	encl.Refs = append(encl.Refs, Edge{Callee: fn, Pos: pos})
}

// ifaceCandidates returns the concrete module methods an interface method
// call may dispatch to. Only interfaces defined inside the module are
// expanded; the result is cached and deterministic.
func (b *cgBuilder) ifaceCandidates(fn *types.Func) []*types.Func {
	if cands, ok := b.ifaceCand[fn]; ok {
		return cands
	}
	var cands []*types.Func
	defer func() { b.ifaceCand[fn] = cands }()
	if fn.Pkg() == nil {
		return cands
	}
	path := fn.Pkg().Path()
	if path != b.prog.Module && !strings.HasPrefix(path, b.prog.Module+"/") {
		return cands
	}
	iface, ok := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return cands
	}
	for _, tn := range b.moduleTypes {
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		sel := types.NewMethodSet(pt).Lookup(fn.Pkg(), fn.Name())
		if sel == nil {
			continue
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			cands = append(cands, m)
		}
	}
	return cands
}

// addLit creates the node for a function literal and classifies its
// creation site.
func (b *cgBuilder) addLit(p *Package, lit *ast.FuncLit, stack []ast.Node) {
	encl := b.enclosingNode(stack)
	sig, _ := p.Info.Types[lit].Type.(*types.Signature)
	node := &Node{Lit: lit, Encl: encl, Pkg: p, Body: lit.Body, Sig: sig}
	b.litNode[lit] = node
	b.g.Nodes = append(b.g.Nodes, node)
	if encl == nil {
		node.Escapes = true // package-level initializer: unknown context
		return
	}

	parent := parentNode(stack)
	switch pn := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(pn.Fun) == lit {
			// Immediately invoked: part of the creator's body.
			encl.Calls = append(encl.Calls, Edge{To: node, Pos: lit.Pos()})
			return
		}
		if argOf(pn, lit) {
			node.PassedTo = calleeFunc(p.Info, pn)
			node.Escapes = true
			encl.Refs = append(encl.Refs, Edge{To: node, Pos: lit.Pos()})
			return
		}
	case *ast.AssignStmt:
		for i, rhs := range pn.Rhs {
			if ast.Unparen(rhs) != lit || i >= len(pn.Lhs) {
				continue
			}
			if obj := assignedObj(p.Info, pn.Lhs[i]); obj != nil &&
				localCallOnly(p.Info, encl.Body, obj) {
				encl.Calls = append(encl.Calls, Edge{To: node, Pos: lit.Pos()})
				return
			}
		}
	case *ast.ValueSpec:
		for i, v := range pn.Values {
			if ast.Unparen(v) != lit || i >= len(pn.Names) {
				continue
			}
			obj := p.Info.Defs[pn.Names[i]]
			if obj != nil && localCallOnly(p.Info, encl.Body, obj) {
				encl.Calls = append(encl.Calls, Edge{To: node, Pos: lit.Pos()})
				return
			}
		}
	}
	node.Escapes = true
	encl.Refs = append(encl.Refs, Edge{To: node, Pos: lit.Pos()})
}

// argOf reports whether lit appears directly in call's argument list.
func argOf(call *ast.CallExpr, lit *ast.FuncLit) bool {
	for _, a := range call.Args {
		if ast.Unparen(a) == lit {
			return true
		}
	}
	return false
}

// parentNode returns the syntactic parent of the top-of-stack node,
// looking through parentheses.
func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// assignedObj resolves the variable an assignment LHS binds, for both :=
// definitions and plain assignments.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// localCallOnly reports whether every use of obj inside body is a direct
// call — the pattern that keeps a closure non-escaping.
func localCallOnly(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	ok := true
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.Uses[id] != obj {
			return true
		}
		if !inCallPosition(stack, id) {
			ok = false
		}
		return true
	})
	return ok
}

// ---------------------------------------------------------------------------
// Naming and debug output

// Name renders a node for call-chain diagnostics: "core.Kernel.Defer",
// "rt.spawnLocal", or "core.step.func@123" for a literal.
func (g *CallGraph) Name(n *Node) string {
	if n.Fn != nil {
		return funcDisplayName(n.Fn)
	}
	line := g.fset.Position(n.Lit.Pos()).Line
	for e := n.Encl; e != nil; e = e.Encl {
		if e.Fn != nil {
			return fmt.Sprintf("%s.func@%d", funcDisplayName(e.Fn), line)
		}
	}
	return fmt.Sprintf("%s.func@%d", n.Pkg.Pkg.Name(), line)
}

// funcDisplayName renders pkg.Func or pkg.Type.Method.
func funcDisplayName(fn *types.Func) string {
	pkg := "_"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// Dump writes the graph as sorted "caller -> target [kind]" lines, one
// per edge, for the driver's -graph flag.
func (g *CallGraph) Dump(w io.Writer) {
	var lines []string
	for _, n := range g.Nodes {
		name := g.Name(n)
		for _, e := range n.Calls {
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", name, g.edgeName(e), edgeKind(e, "call")))
		}
		for _, e := range n.Refs {
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", name, g.edgeName(e), edgeKind(e, "ref")))
		}
		if n.Lit != nil && n.Escapes {
			lines = append(lines, fmt.Sprintf("%s [escapes]", name))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

func (g *CallGraph) edgeName(e Edge) string {
	if e.To != nil {
		return g.Name(e.To)
	}
	return funcDisplayName(e.Callee)
}

func edgeKind(e Edge, base string) string {
	if e.Iface {
		return "iface"
	}
	return base
}
