package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Pkg and Info are the go/types results.
	Pkg  *types.Package
	Info *types.Info
}

// Program is a set of packages loaded together on one FileSet.
type Program struct {
	// Module is the module path from go.mod (e.g. "simany").
	Module string
	// Root is the module root directory.
	Root string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs are the loaded packages, in import-path order.
	Pkgs []*Package

	annots map[types.Object]string // lazily built //simany: annotations

	cgOnce sync.Once  // guards cg for the parallel driver
	cg     *CallGraph // lazily built module call graph
}

// Loader loads module packages from source, resolving module-internal
// imports recursively and everything else (the standard library) through
// the go/importer source importer — no toolchain export data, no x/tools.
type Loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// Import implements types.Importer: module paths load from source under the
// module root, everything else goes to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.LoadDir(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package with the given import path. Results are cached per path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Load expands the patterns (import-path style, "./..." wildcards allowed,
// relative to the module root) and returns a Program holding every matched
// package. Directories named testdata, and those starting with "." or "_",
// are skipped.
func (l *Loader) Load(patterns ...string) (*Program, error) {
	seen := make(map[string]bool)
	var paths []string
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			path := l.module
			if d != "." {
				path = l.module + "/" + filepath.ToSlash(d)
			}
			if !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	sort.Strings(paths)
	prog := &Program{Module: l.module, Root: l.root, Fset: l.fset}
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		if rel == "" {
			rel = "."
		}
		p, err := l.LoadDir(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	return prog, nil
}

// expand resolves one pattern to module-root-relative directories that
// contain at least one non-test Go file.
func (l *Loader) expand(pattern string) ([]string, error) {
	pattern = filepath.ToSlash(pattern)
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "" {
		pattern = "."
	}
	recursive := false
	if pattern == "..." {
		pattern, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		pattern, recursive = rest, true
	}
	base := filepath.Join(l.root, filepath.FromSlash(pattern))
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no Go files in %s", base)
		}
		return []string{pattern}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(l.root, path)
			if err != nil {
				return err
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}
