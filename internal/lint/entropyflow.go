package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Entropyflow is the interprocedural companion to nodeterminism. The
// syntactic rule catches a direct time.Now inside a simulator package,
// but entropy launders trivially through one helper call:
//
//	func (c *Core) step() { jitter := harness.Jitter(); ... }
//
// harness is outside the restricted set, so nodeterminism stays quiet —
// yet the simulation result now depends on the host clock. Entropyflow
// closes the hole with a taint fixpoint over the module call graph: every
// function that transitively reaches a host-entropy source (time.Now,
// the global math/rand stream, os.Getenv, ...) through module-internal
// calls is tainted, and any call or function-value reference from
// internal/{core,rt,mem,network,drift,vtime,topology,metrics} into a
// tainted function is a finding. The diagnostic prints the witness chain
// (core.step → harness.Jitter → time.Now) so the laundering path is
// visible at the call site.
//
// Direct source uses inside the restricted packages stay nodeterminism's
// findings; entropyflow only reports the interprocedural hop, so the two
// rules never double-report one site.
var Entropyflow = &Analyzer{
	Name: "entropyflow",
	Doc:  "flag calls from simulator packages into functions that transitively reach host entropy",
	Run:  runEntropyflow,
}

// taintStep records why a node is tainted: either a direct source use
// (src != "") or a call/ref into a tainted node (next != nil).
type taintStep struct {
	src  string // "time.Now", "rand.Int", ... for direct uses
	next *Node  // the tainted callee this node reaches
	pos  token.Pos
}

// entropyTaint computes (once) the tainted-node map over the call graph.
func (g *CallGraph) entropyTaint(prog *Program) map[*Node]*taintStep {
	g.entropyOnce.Do(func() {
		g.taint = make(map[*Node]*taintStep)
		// Seed: nodes whose own body uses an entropy source.
		for _, n := range g.Nodes {
			if src, pos := directEntropyUse(n); src != "" {
				g.taint[n] = &taintStep{src: src, pos: pos}
			}
		}
		// Propagate caller-ward to a fixpoint. Node order is
		// deterministic, so the recorded witness chains are too.
		for changed := true; changed; {
			changed = false
			for _, n := range g.Nodes {
				if g.taint[n] != nil {
					continue
				}
				for _, edges := range [][]Edge{n.Calls, n.Refs} {
					for _, e := range edges {
						if e.To != nil && g.taint[e.To] != nil {
							g.taint[n] = &taintStep{next: e.To, pos: e.Pos}
							changed = true
							break
						}
					}
					if g.taint[n] != nil {
						break
					}
				}
			}
		}
	})
	return g.taint
}

// directEntropyUse scans a node's own body (nested literals excluded —
// they have their own nodes) for a host-entropy source and returns its
// display name, or "".
func directEntropyUse(n *Node) (string, token.Pos) {
	if n.Body == nil {
		return "", token.NoPos
	}
	src, pos := "", token.NoPos
	walkOwnBody(n, func(e ast.Node) {
		if src != "" {
			return
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if s := entropySourceName(n.Pkg, sel); s != "" {
			src, pos = s, sel.Pos()
		}
	})
	return src, pos
}

// entropySourceName classifies a selector as a host-entropy source using
// nodeterminism's tables, returning "pkg.Name" or "".
func entropySourceName(p *Package, sel *ast.SelectorExpr) string {
	pn := pkgNameOf(p.Info, sel.X)
	if pn == nil {
		return ""
	}
	if isTypeRef(p, sel) {
		return ""
	}
	name := sel.Sel.Name
	switch pn.Imported().Path() {
	case "time":
		if nodetTime[name] {
			return "time." + name
		}
	case "math/rand", "math/rand/v2":
		if !nodetRandAllowed[name] {
			return "rand." + name
		}
	case "os":
		if nodetOS[name] {
			return "os." + name
		}
	}
	return ""
}

// walkOwnBody visits every node of n's body except nested function
// literals' bodies.
func walkOwnBody(n *Node, visit func(ast.Node)) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(e ast.Node) bool {
		if lit, ok := e.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		visit(e)
		return true
	})
}

func runEntropyflow(prog *Program, p *Package, r *Reporter) {
	if !p.isInternal(prog, deterministicPkgs...) {
		return
	}
	g := prog.CallGraph()
	taint := g.entropyTaint(prog)
	for _, n := range g.Nodes {
		if n.Pkg != p {
			continue
		}
		for _, e := range n.Calls {
			if e.To != nil && taint[e.To] != nil {
				r.Report(e.Pos, "entropyflow",
					"call reaches a host-entropy source: %s; results must depend only on (seed, config)",
					g.taintChain(n, e.To, taint))
			}
		}
		for _, e := range n.Refs {
			if e.To != nil && taint[e.To] != nil {
				r.Report(e.Pos, "entropyflow",
					"function value reaches a host-entropy source: %s; results must depend only on (seed, config)",
					g.taintChain(n, e.To, taint))
			}
		}
	}
}

// taintChain renders the witness path "caller → callee → ... → source".
func (g *CallGraph) taintChain(from, to *Node, taint map[*Node]*taintStep) string {
	parts := []string{g.Name(from)}
	for n := to; n != nil; {
		parts = append(parts, g.Name(n))
		step := taint[n]
		if step == nil {
			break
		}
		if step.src != "" {
			parts = append(parts, step.src)
			break
		}
		n = step.next
	}
	return strings.Join(parts, " → ")
}
