package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadCorpus type-checks one testdata directory under a fake import path
// (the analyzers gate on import paths, so the corpus can impersonate a
// simulator package) and wraps it in a single-package Program.
func loadCorpus(t *testing.T, dir, fakePath string) *Program {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "internal", "lint", "testdata", dir), fakePath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	return &Program{Module: l.module, Root: root, Fset: l.fset, Pkgs: []*Package{p}}
}

// wantLines scans a corpus file for "want:<rule>" markers and returns the
// line numbers expected to carry at least one finding of that rule.
func wantLines(t *testing.T, file, rule string) map[int]bool {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make(map[int]bool)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if strings.Contains(sc.Text(), "want:"+rule) {
			want[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatalf("corpus %s has no want:%s markers", file, rule)
	}
	return want
}

// TestAnalyzerCorpora proves every analyzer fires exactly on its corpus's
// marked lines: each want line yields at least one finding of the rule,
// no finding lands on an unmarked line, and the corpus suppressions are
// honored.
func TestAnalyzerCorpora(t *testing.T) {
	cases := []struct {
		dir        string
		fakePath   string
		analyzer   *Analyzer
		suppressed int
	}{
		{"nodeterminism", "simany/internal/core", NoDeterminism, 1},
		{"maporder", "simany/internal/network", MapOrder, 0},
		{"homeshard", "simany/internal/hs", HomeShard, 0},
		{"rawvtime", "simany/internal/rvbad", RawVtime, 1},
		{"lockdiscipline", "simany/internal/rt", LockDiscipline, 1},
		{"snapshotsafe", "simany/internal/core", SnapshotSafe, 1},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			prog := loadCorpus(t, tc.dir, tc.fakePath)
			rep := Run(prog, []*Analyzer{tc.analyzer})
			diags := rep.Diagnostics()

			file := prog.Pkgs[0].Files[0]
			filename := prog.Fset.Position(file.Pos()).Filename
			want := wantLines(t, filename, tc.analyzer.Name)

			got := make(map[int]bool)
			for _, d := range diags {
				if d.Rule != tc.analyzer.Name {
					t.Errorf("unexpected rule %q in diagnostic %s", d.Rule, d)
					continue
				}
				if !want[d.Line] {
					t.Errorf("false positive: %s", d)
				}
				got[d.Line] = true
			}
			for line := range want {
				if !got[line] {
					t.Errorf("%s:%d: expected a %s finding, got none",
						filepath.Base(filename), line, tc.analyzer.Name)
				}
			}
			if rep.Suppressed() != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", rep.Suppressed(), tc.suppressed)
			}
		})
	}
}

// TestRealTreeClean is the zero-false-positive guarantee: the full rule
// set over the repository's real packages must report nothing (intentional
// exceptions carry //lint:allow and count as suppressions, not findings).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := l.Load("./internal/...", "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(prog, Analyzers())
	for _, d := range rep.Diagnostics() {
		t.Errorf("real tree: %s", d)
	}
	if len(prog.Pkgs) < 10 {
		t.Errorf("only %d packages loaded; pattern expansion looks broken", len(prog.Pkgs))
	}
}

// TestSuppressionScope pins the //lint:allow contract: the directive
// covers its own line and the next, nothing further.
func TestSuppressionScope(t *testing.T) {
	prog := loadCorpus(t, "nodeterminism", "simany/internal/core")
	rep := NewReporter(prog.Fset)
	for _, f := range prog.Pkgs[0].Files {
		rep.CollectAllows(f)
	}
	file := prog.Fset.Position(prog.Pkgs[0].Files[0].Pos()).Filename

	// Find the directive's line in the corpus.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	dirLine := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "//lint:allow nodeterminism") {
			dirLine = i + 1
			break
		}
	}
	if dirLine == 0 {
		t.Fatal("corpus lost its //lint:allow directive")
	}
	for line, covered := range map[int]bool{
		dirLine - 1: false,
		dirLine:     true,
		dirLine + 1: true,
		dirLine + 2: false,
	} {
		got := rep.allow[file][line]["nodeterminism"]
		if got != covered {
			t.Errorf("line %d (directive at %d): covered = %v, want %v",
				line, dirLine, got, covered)
		}
	}

	// A different rule on a covered line is still reported.
	pos := prog.Pkgs[0].Files[0].Pos()
	_ = pos
	if rep.allow[file][dirLine]["maporder"] {
		t.Error("suppression leaked to a rule the directive does not name")
	}
}

// TestDiagnosticString pins the compiler-style output format the CI step
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 7, Col: 3, Rule: "maporder", Msg: "boom"}
	if got, want := d.String(), "a/b.go:7:3: maporder: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); got != d.String() {
		t.Errorf("fmt.Sprint = %q", got)
	}
}
