package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadCorpus type-checks one testdata directory under a fake import path
// (the analyzers gate on import paths, so the corpus can impersonate a
// simulator package) and wraps it in a single-package Program.
func loadCorpus(t *testing.T, dir, fakePath string) *Program {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "internal", "lint", "testdata", dir), fakePath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	return &Program{Module: l.module, Root: root, Fset: l.fset, Pkgs: []*Package{p}}
}

// wantLines scans a corpus file for "want:<rule>" markers and returns the
// line numbers expected to carry at least one finding of that rule.
func wantLines(t *testing.T, file, rule string) map[int]bool {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make(map[int]bool)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if strings.Contains(sc.Text(), "want:"+rule) {
			want[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatalf("corpus %s has no want:%s markers", file, rule)
	}
	return want
}

// TestAnalyzerCorpora proves every analyzer fires exactly on its corpus's
// marked lines: each want line yields at least one finding of the rule,
// no finding lands on an unmarked line, and the corpus suppressions are
// honored.
func TestAnalyzerCorpora(t *testing.T) {
	cases := []struct {
		dir        string
		fakePath   string
		analyzer   *Analyzer
		suppressed int
	}{
		{"nodeterminism", "simany/internal/core", NoDeterminism, 1},
		{"entropyflow", "simany/internal/core", Entropyflow, 1},
		{"maporder", "simany/internal/network", MapOrder, 0},
		{"homeshard", "simany/internal/hs", HomeShard, 0},
		{"rawvtime", "simany/internal/rvbad", RawVtime, 1},
		{"lockdiscipline", "simany/internal/rt", LockDiscipline, 1},
		{"snapshotsafe", "simany/internal/core", SnapshotSafe, 1},
		{"snapcover", "simany/internal/sc", SnapCover, 1},
		{"allowjustify", "simany/internal/aj", AllowJustify, 0},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			prog := loadCorpus(t, tc.dir, tc.fakePath)
			rep := Run(prog, []*Analyzer{tc.analyzer})
			diags := rep.Diagnostics()

			file := prog.Pkgs[0].Files[0]
			filename := prog.Fset.Position(file.Pos()).Filename
			want := wantLines(t, filename, tc.analyzer.Name)

			got := make(map[int]bool)
			for _, d := range diags {
				if d.Rule != tc.analyzer.Name {
					t.Errorf("unexpected rule %q in diagnostic %s", d.Rule, d)
					continue
				}
				if !want[d.Line] {
					t.Errorf("false positive: %s", d)
				}
				got[d.Line] = true
			}
			for line := range want {
				if !got[line] {
					t.Errorf("%s:%d: expected a %s finding, got none",
						filepath.Base(filename), line, tc.analyzer.Name)
				}
			}
			if rep.Suppressed() != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", rep.Suppressed(), tc.suppressed)
			}
		})
	}
}

// TestRealTreeClean is the zero-false-positive guarantee: the full rule
// set over the repository's real packages must report nothing (intentional
// exceptions carry //lint:allow and count as suppressions, not findings).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := l.Load("./internal/...", "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(prog, Analyzers())
	for _, d := range rep.Diagnostics() {
		t.Errorf("real tree: %s", d)
	}
	if len(prog.Pkgs) < 10 {
		t.Errorf("only %d packages loaded; pattern expansion looks broken", len(prog.Pkgs))
	}
}

// loadRealTree type-checks the repository's real packages.
func loadRealTree(t *testing.T) *Program {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := l.Load("./internal/...", "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunDeterministic proves the parallel driver's output is independent
// of worker interleaving: two independent loads of the real tree, each run
// through the full rule set, must produce byte-identical diagnostics and
// suppression lists.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source twice")
	}
	var diags [2][]Diagnostic
	var supps [2][]Suppression
	for i := range diags {
		rep := Run(loadRealTree(t), Analyzers())
		diags[i] = rep.Diagnostics()
		supps[i] = rep.Suppressions()
	}
	if !reflect.DeepEqual(diags[0], diags[1]) {
		t.Errorf("diagnostics differ across runs:\n%v\nvs\n%v", diags[0], diags[1])
	}
	if !reflect.DeepEqual(supps[0], supps[1]) {
		t.Errorf("suppressions differ across runs:\n%v\nvs\n%v", supps[0], supps[1])
	}
}

// copyCoreTo copies internal/core's non-test sources into dir, applying
// edit to each file's content, and returns the module root.
func copyCoreTo(t *testing.T, dir string, edit func(name, src string) string) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal", "core")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		out := edit(name, string(data))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// loadSeededCore type-checks a doctored copy of internal/core under its
// real import path (so packages importing core resolve to the copy) plus
// any extra real packages, and returns the resulting Program.
func loadSeededCore(t *testing.T, coreDir, root string, extra ...string) *Program {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// The copy must load first: LoadDir caches it under the core import
	// path, so the extra packages' imports of core hit the doctored copy.
	pkgs := []*Package{}
	p, err := l.LoadDir(coreDir, "simany/internal/core")
	if err != nil {
		t.Fatalf("loading doctored core: %v", err)
	}
	pkgs = append(pkgs, p)
	for _, name := range extra {
		p, err := l.LoadDir(filepath.Join(root, "internal", name), "simany/internal/"+name)
		if err != nil {
			t.Fatalf("loading %s against doctored core: %v", name, err)
		}
		pkgs = append(pkgs, p)
	}
	return &Program{Module: l.module, Root: root, Fset: l.fset, Pkgs: pkgs}
}

// TestSeededSnapcoverBug is the end-to-end guarantee the rule exists for:
// deleting one field's encode line from the real checkpoint code makes
// snapcover name exactly that field.
func TestSeededSnapcoverBug(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks doctored module packages from source")
	}
	const encodeLine = "enc.Varint(st.Stalls)"
	dir := t.TempDir()
	seeded := false
	root := copyCoreTo(t, dir, func(name, src string) string {
		if name != "snapshot.go" {
			return src
		}
		if !strings.Contains(src, encodeLine) {
			t.Fatalf("snapshot.go lost the %q encode line the test deletes", encodeLine)
		}
		seeded = true
		return strings.Replace(src, encodeLine, "", 1)
	})
	if !seeded {
		t.Fatal("snapshot.go was not copied")
	}
	// rt rides along because its task codec covers core fields (Task.Meta);
	// core alone would report those too and drown the seeded signal.
	prog := loadSeededCore(t, dir, root, "rt")
	rep := Run(prog, []*Analyzer{SnapCover})
	diags := rep.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the deleted field):\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Msg, "CoreStats.Stalls") {
		t.Errorf("finding does not name the deleted field: %s", diags[0])
	}
}

// TestSeededEntropyBug injects a two-hop host-clock chain into a copy of
// internal/core and checks entropyflow reports the interprocedural hop
// with the full witness chain.
func TestSeededEntropyBug(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a doctored module package from source")
	}
	dir := t.TempDir()
	root := copyCoreTo(t, dir, func(name, src string) string { return src })
	injected := `package core

import "time"

func seededHop() int64 { return seededSource() }

func seededSource() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "seeded_entropy.go"), []byte(injected), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := loadSeededCore(t, dir, root)
	rep := Run(prog, []*Analyzer{Entropyflow})
	diags := rep.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the injected hop):\n%v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Msg, "seededHop") ||
		!strings.Contains(d.Msg, "seededSource → time.Now") {
		t.Errorf("finding lacks the witness chain seededHop → seededSource → time.Now: %s", d)
	}
	if filepath.Base(d.File) != "seeded_entropy.go" {
		t.Errorf("finding at %s, want seeded_entropy.go", d.File)
	}
}

// TestSuppressionScope pins the //lint:allow contract: the directive
// covers its own line and the next, nothing further.
func TestSuppressionScope(t *testing.T) {
	prog := loadCorpus(t, "nodeterminism", "simany/internal/core")
	rep := NewReporter(prog.Fset)
	for _, f := range prog.Pkgs[0].Files {
		rep.CollectAllows(f)
	}
	file := prog.Fset.Position(prog.Pkgs[0].Files[0].Pos()).Filename

	// Find the directive's line in the corpus.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	dirLine := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "//lint:allow nodeterminism") {
			dirLine = i + 1
			break
		}
	}
	if dirLine == 0 {
		t.Fatal("corpus lost its //lint:allow directive")
	}
	for line, covered := range map[int]bool{
		dirLine - 1: false,
		dirLine:     true,
		dirLine + 1: true,
		dirLine + 2: false,
	} {
		_, got := rep.allow[file][line]["nodeterminism"]
		if got != covered {
			t.Errorf("line %d (directive at %d): covered = %v, want %v",
				line, dirLine, got, covered)
		}
	}

	// A different rule on a covered line is still reported.
	pos := prog.Pkgs[0].Files[0].Pos()
	_ = pos
	if _, leaked := rep.allow[file][dirLine]["maporder"]; leaked {
		t.Error("suppression leaked to a rule the directive does not name")
	}
}

// TestDiagnosticString pins the compiler-style output format the CI step
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 7, Col: 3, Rule: "maporder", Msg: "boom"}
	if got, want := d.String(), "a/b.go:7:3: maporder: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); got != d.String() {
		t.Errorf("fmt.Sprint = %q", got)
	}
}
