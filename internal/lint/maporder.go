package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range statements over maps whose body performs
// order-sensitive effects: calling into the simulator-state packages
// (core, rt, network, mem), appending to shared (non-local) slices, sending
// on channels or launching goroutines. Go randomizes map iteration order,
// so any such loop makes message emission and state mutation depend on the
// per-process hash seed — exactly the bug class that breaks (seed, shards)
// reproducibility and the deterministic (stamp, src, idx) barrier merge.
// The sanctioned pattern is to collect the keys into a slice, sort it, and
// iterate the slice (see Kernel.deadlockError); loops whose effects are
// genuinely commutative can be suppressed with //lint:allow maporder.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive effects inside range-over-map loops",
	Run:  runMapOrder,
}

func runMapOrder(prog *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapBody(prog, p, r, rs)
			return true
		})
	}
}

// checkMapBody reports the order-sensitive effects in a map-range body.
// Function literals are included: closures created per iteration (deferred
// operations, goroutine bodies) still execute work discovered in map order.
func checkMapBody(prog *Program, p *Package, r *Reporter, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			r.Report(n.Pos(), "maporder",
				"channel send inside range over map: delivery order follows the randomized iteration order")
		case *ast.GoStmt:
			r.Report(n.Pos(), "maporder",
				"goroutine launched inside range over map: spawn order follows the randomized iteration order")
		case *ast.CallExpr:
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil &&
				internalPkgPath(prog, fn.Pkg().Path(), stateMutatorPkgs...) {
				r.Report(n.Pos(), "maporder",
					"call to %s.%s inside range over map: simulator state would be touched in randomized iteration order; collect and sort the keys first",
					fn.Pkg().Name(), fn.Name())
				return true
			}
			// append(x.f, ...) or append(m[k], ...): growing a slice that
			// outlives the loop in iteration order. Appends to loop-local
			// identifiers (the collect-then-sort idiom) are fine.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if _, plain := ast.Unparen(n.Args[0]).(*ast.Ident); !plain {
						r.Report(n.Pos(), "maporder",
							"append to a shared slice inside range over map: element order follows the randomized iteration order; collect and sort the keys first")
					}
				}
			}
		}
		return true
	})
}
