package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HomeShard enforces PR 1's home-shard arbitration discipline. Functions
// carrying a //simany:homeshard annotation mutate state owned by a shared
// object's home shard (rt group counters, lock waiter queues, cell
// directories) and therefore may only run in home-shard context. The
// analyzer verifies every call site is one of:
//
//   - another //simany:homeshard function (the context propagates),
//   - a //simany:barrier function (barriers are single-threaded),
//   - a closure passed directly to a //simany:arbiter function
//     (Kernel.Defer / Runtime.runAt — the sanctioned routes into home
//     context),
//   - same-package test code (test files are not analyzed).
//
// Any other caller would mutate home-owned state from a foreign shard's
// worker, racing the owner — the failure mode conservative determinism
// must prevent rather than tolerate (contrast the rollback machinery of
// optimistic PDES engines).
var HomeShard = &Analyzer{
	Name: "homeshard",
	Doc:  "restrict //simany:homeshard functions to home-shard/barrier callers",
	Run:  runHomeShard,
}

// annotation kinds recognized in function doc comments.
const (
	annotHomeShard = "homeshard"
	annotBarrier   = "barrier"
	annotArbiter   = "arbiter"
)

// Annotations lazily scans every loaded package for //simany:<kind>
// function annotations and returns the object -> kind map.
func (prog *Program) Annotations() map[types.Object]string {
	if prog.annots != nil {
		return prog.annots
	}
	prog.annots = make(map[types.Object]string)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				kind := annotationOf(fd.Doc)
				if kind == "" {
					continue
				}
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					prog.annots[obj] = kind
				}
			}
		}
	}
	return prog.annots
}

// annotationOf extracts the //simany: marker from a doc comment, "" if none.
func annotationOf(doc *ast.CommentGroup) string {
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "simany:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func runHomeShard(prog *Program, p *Package, r *Reporter) {
	annots := prog.Annotations()
	if len(annots) == 0 {
		return
	}
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || annots[fn] != annotHomeShard {
				return true
			}
			if homeContextOK(p, annots, stack) {
				return true
			}
			r.Report(call.Pos(), "homeshard",
				"call to home-shard function %s from non-home context: only //simany:homeshard or //simany:barrier functions, or closures passed to a //simany:arbiter (Kernel.Defer, Runtime.runAt), may call it",
				fn.Name())
			return true
		})
	}
}

// homeContextOK walks the enclosing-node stack (innermost last) looking for
// a context that legitimizes a home-shard call.
func homeContextOK(p *Package, annots map[types.Object]string, stack []ast.Node) bool {
	// Skip the call expression itself.
	for i := len(stack) - 2; i >= 0; i-- {
		switch enc := stack[i].(type) {
		case *ast.FuncLit:
			// A closure handed straight to an arbiter runs in home context
			// (the arbiter defers it to the home shard or a barrier).
			if i > 0 {
				if parent, ok := stack[i-1].(*ast.CallExpr); ok {
					fn := calleeFunc(p.Info, parent)
					if fn != nil && annots[fn] == annotArbiter && argOf(parent, enc) {
						return true
					}
				}
			}
			// Otherwise the closure is transparent: keep climbing — a
			// helper closure defined inside an annotated function is part
			// of its body.
		case *ast.FuncDecl:
			obj := p.Info.Defs[enc.Name]
			kind := annots[obj]
			return kind == annotHomeShard || kind == annotBarrier
		}
	}
	return false
}

// argOf reports whether lit appears directly in call's argument list.
func argOf(call *ast.CallExpr, lit *ast.FuncLit) bool {
	for _, a := range call.Args {
		if ast.Unparen(a) == lit {
			return true
		}
	}
	return false
}
