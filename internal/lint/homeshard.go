package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HomeShard enforces PR 1's home-shard arbitration discipline. Functions
// carrying a //simany:homeshard annotation mutate state owned by a shared
// object's home shard (rt group counters, lock waiter queues, cell
// directories) and therefore may only run in home-shard context: inside
// another //simany:homeshard function, a //simany:barrier function
// (barriers are single-threaded), or a closure passed directly to a
// //simany:arbiter function (Kernel.Defer / Runtime.runAt — the
// sanctioned routes into home context).
//
// Unlike the original direct-call-site check, the analyzer now works over
// the module call graph: arbitration context propagates through
// unannotated helper functions, so a helper called only from home context
// may call home-shard functions freely, while a helper reachable from a
// foreign-context entry point is flagged with the full offending chain.
// Foreign-context entry points are:
//
//   - exported unannotated functions (callable from anywhere),
//   - unannotated functions referenced as values (method values,
//     function-typed fields — invocation context unknown),
//   - unannotated functions with no module-internal caller (main, API
//     surface exercised by tests),
//   - escaping closures (stored, returned, or passed to a non-arbiter
//     callee) — these are flagged rather than invisibly trusted.
//
// Interface-dispatched calls do not propagate foreign context (candidate
// sets are conservative); a home-shard mutation behind an interface must
// annotate the concrete method, which this rule then guards directly.
// Referencing a //simany:homeshard function as a value is always a
// finding: the value can be invoked from any context.
var HomeShard = &Analyzer{
	Name: "homeshard",
	Doc:  "restrict //simany:homeshard functions to call chains rooted in home-shard/barrier/arbiter context",
	Run:  runHomeShard,
}

// annotation kinds recognized in function doc comments.
const (
	annotHomeShard = "homeshard"
	annotBarrier   = "barrier"
	annotArbiter   = "arbiter"
)

// Annotations lazily scans every loaded package for //simany:<kind>
// function annotations and returns the object -> kind map.
func (prog *Program) Annotations() map[types.Object]string {
	if prog.annots != nil {
		return prog.annots
	}
	prog.annots = make(map[types.Object]string)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				kind := annotationOf(fd.Doc)
				if kind == "" {
					continue
				}
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					prog.annots[obj] = kind
				}
			}
		}
	}
	return prog.annots
}

// annotationOf extracts the //simany: marker from a doc comment, "" if none.
func annotationOf(doc *ast.CommentGroup) string {
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "simany:"); ok {
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

func runHomeShard(prog *Program, p *Package, r *Reporter) {
	annots := prog.Annotations()
	if len(annots) == 0 {
		return
	}
	g := prog.CallGraph()
	g.homeOnce.Do(func() { g.homeDiags = homeShardFindings(prog, g, annots) })
	for _, d := range g.homeDiags {
		if d.pkg == p.Path {
			r.Report(d.pos, d.rule, "%s", d.msg)
		}
	}
}

// foreignOrigin describes why a node can run outside home context and,
// for propagated badness, the caller chain that carries it.
type foreignOrigin struct {
	why    string // for entry points: "exported", "escaping closure", ...
	parent *Node  // for propagated nodes: the foreign caller
}

func homeShardFindings(prog *Program, g *CallGraph, annots map[types.Object]string) []pkgDiag {
	kind := func(n *Node) string {
		if n == nil || n.Fn == nil {
			return ""
		}
		return annots[n.Fn]
	}
	trustedClosure := func(n *Node) bool {
		return n.Lit != nil && n.PassedTo != nil && annots[n.PassedTo] == annotArbiter
	}

	// Functions referenced as values and functions with at least one
	// module-internal static caller.
	referenced := make(map[*Node]bool)
	hasCaller := make(map[*Node]bool)
	for _, n := range g.Nodes {
		for _, e := range n.Refs {
			if e.To != nil {
				referenced[e.To] = true
			}
		}
		for _, e := range n.Calls {
			if e.To != nil && !e.Iface {
				hasCaller[e.To] = true
			}
		}
	}

	// Seed the foreign-context set with the entry points.
	foreign := make(map[*Node]*foreignOrigin)
	for _, n := range g.Nodes {
		if kind(n) != "" || trustedClosure(n) {
			continue // annotated functions and arbiter closures are home context
		}
		switch {
		case n.Lit != nil && n.Escapes:
			foreign[n] = &foreignOrigin{why: "escaping closure"}
		case n.Fn != nil && n.Fn.Exported():
			foreign[n] = &foreignOrigin{why: "exported"}
		case n.Fn != nil && referenced[n]:
			foreign[n] = &foreignOrigin{why: "referenced as a value"}
		case n.Fn != nil && !hasCaller[n]:
			foreign[n] = &foreignOrigin{why: "no module-internal caller"}
		}
	}

	// Propagate foreign context through unannotated static callees
	// (non-escaping closures are Calls targets of their creators, so
	// badness flows into them naturally). Annotated functions are trust
	// boundaries: propagation stops there, and reaching a homeshard one
	// is the finding.
	var diags []pkgDiag
	reported := make(map[[2]any]bool) // (caller node, edge pos) dedup
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if foreign[n] == nil {
				continue
			}
			for _, e := range n.Calls {
				if e.To == nil || e.Iface {
					continue
				}
				switch {
				case kind(e.To) == annotHomeShard:
					key := [2]any{n, e.Pos}
					if !reported[key] {
						reported[key] = true
						diags = append(diags, pkgDiag{
							pkg: n.Pkg.Path, pos: e.Pos, rule: "homeshard",
							msg: "call to home-shard function " + e.To.Fn.Name() +
								" from foreign context (" + foreignChain(g, foreign, n) +
								"): only //simany:homeshard or //simany:barrier functions, or closures passed to a //simany:arbiter (Kernel.Defer, Runtime.runAt), may call it",
						})
					}
				case kind(e.To) != "" || trustedClosure(e.To):
					// barrier/arbiter or trusted closure: boundary.
				case foreign[e.To] == nil:
					foreign[e.To] = &foreignOrigin{parent: n}
					changed = true
				}
			}
		}
	}

	// A home-shard function used as a value escapes every context check.
	for _, n := range g.Nodes {
		for _, e := range n.Refs {
			if e.To != nil && kind(e.To) == annotHomeShard {
				diags = append(diags, pkgDiag{
					pkg: n.Pkg.Path, pos: e.Pos, rule: "homeshard",
					msg: "home-shard function " + e.To.Fn.Name() +
						" referenced as a value; it could be invoked outside home-shard context — call it through an annotated function or a //simany:arbiter closure instead",
				})
			}
		}
	}
	return diags
}

// foreignChain renders how foreign context reaches n: "entry (exported) →
// helper → n".
func foreignChain(g *CallGraph, foreign map[*Node]*foreignOrigin, n *Node) string {
	var rev []*Node
	cur := n
	for cur != nil {
		rev = append(rev, cur)
		o := foreign[cur]
		if o == nil || o.parent == nil {
			break
		}
		cur = o.parent
	}
	parts := make([]string, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		parts = append(parts, g.Name(rev[i]))
	}
	if o := foreign[rev[len(rev)-1]]; o != nil && o.why != "" {
		parts[0] += " [" + o.why + "]"
	}
	return strings.Join(parts, " → ")
}
